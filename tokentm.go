// Package tokentm is a from-scratch reproduction of "TokenTM: Efficient
// Execution of Large Transactions with Hardware Transactional Memory"
// (Bobba, Goyal, Hill, Swift & Wood, ISCA 2008).
//
// It provides:
//
//   - a cycle-approximate 32-core CMP simulator (private L1s, banked shared
//     L2, MESI directory coherence over a tiled interconnect);
//   - the TokenTM HTM: precise unbounded conflict detection via per-block
//     transactional tokens with double-entry bookkeeping, metastate
//     fission/fusion, in-memory metabits and fast token release;
//   - the LogTM-SE baseline with perfect and Bloom (2xH3/4xH3) signatures;
//   - Table 5-calibrated synthetic STAMP/SPLASH workloads and the lock-based
//     server models of Table 1;
//   - an experiment harness that regenerates every table and figure in the
//     paper's evaluation (see the Figure1, Figure5, Table1, Table5 and
//     Table6 functions, and cmd/experiments).
//
// Quick start:
//
//	sys := tokentm.New(tokentm.Config{Variant: tokentm.VariantTokenTM, Cores: 4})
//	sys.Spawn(func(tc *tokentm.Ctx) {
//		tc.Atomic(func(tx *tokentm.Tx) {
//			tx.Store(0x1000, tx.Load(0x1000)+1)
//		})
//	})
//	sys.Run()
package tokentm

import (
	"fmt"

	"tokentm/internal/core"
	"tokentm/internal/htm"
	"tokentm/internal/logtmse"
	"tokentm/internal/mem"
	"tokentm/internal/sig"
	"tokentm/internal/sim"
)

// Re-exported simulator types: these aliases are the public names for the
// thread API used by examples and applications.
type (
	// Ctx is a simulated thread's machine interface.
	Ctx = sim.Ctx
	// Tx is the transactional view inside Ctx.Atomic.
	Tx = sim.Tx
	// Addr is a simulated physical byte address.
	Addr = mem.Addr
	// Cycle is simulated time in processor cycles.
	Cycle = mem.Cycle
)

// BlockBytes is the conflict-detection granularity (64-byte blocks).
const BlockBytes = mem.BlockBytes

// Variant names an HTM system evaluated in the paper (§6.1).
type Variant string

// The five evaluated HTM variants.
const (
	VariantTokenTM       Variant = "TokenTM"
	VariantTokenTMNoFast Variant = "TokenTM_NoFast"
	VariantLogTMSEPerf   Variant = "LogTM-SE_Perf"
	VariantLogTMSE2xH3   Variant = "LogTM-SE_2xH3"
	VariantLogTMSE4xH3   Variant = "LogTM-SE_4xH3"
)

// Variants lists all five in the paper's presentation order.
func Variants() []Variant {
	return []Variant{
		VariantTokenTM, VariantTokenTMNoFast,
		VariantLogTMSEPerf, VariantLogTMSE2xH3, VariantLogTMSE4xH3,
	}
}

// Config parameterizes a simulated system.
type Config struct {
	// Variant selects the HTM (default VariantTokenTM).
	Variant Variant
	// Cores is the simulated core count (default 32, the paper's CMP).
	Cores int
	// Seed perturbs conflict backoffs (the paper's error-bar runs).
	Seed int64
	// Quantum enables preemptive time slicing when several threads share
	// a core (0 = run to block, as in the TM workloads).
	Quantum Cycle
	// RetryLimit bounds stalls against an older enemy before self-abort.
	RetryLimit int
}

// System is a configured simulated machine plus its HTM.
type System struct {
	// M is the underlying machine (memory system, scheduler, value store).
	M *sim.Machine
	// HTM is the attached HTM variant.
	HTM htm.System
}

// New builds a system.
func New(cfg Config) *System {
	if cfg.Variant == "" {
		cfg.Variant = VariantTokenTM
	}
	m := sim.New(sim.Config{
		Cores:      cfg.Cores,
		Seed:       cfg.Seed,
		Quantum:    cfg.Quantum,
		RetryLimit: cfg.RetryLimit,
	})
	var h htm.System
	switch cfg.Variant {
	case VariantTokenTM:
		h = core.New(m.Mem, m.Store, core.WithRetryLimit(retryLimit(cfg)))
	case VariantTokenTMNoFast:
		h = core.New(m.Mem, m.Store, core.WithoutFastRelease(), core.WithRetryLimit(retryLimit(cfg)))
	case VariantLogTMSEPerf:
		h = logtmse.New(m.Mem, m.Store, sig.KindPerfect, retryLimit(cfg))
	case VariantLogTMSE2xH3:
		h = logtmse.New(m.Mem, m.Store, sig.Kind2xH3, retryLimit(cfg))
	case VariantLogTMSE4xH3:
		h = logtmse.New(m.Mem, m.Store, sig.Kind4xH3, retryLimit(cfg))
	default:
		panic(fmt.Sprintf("tokentm: unknown variant %q", cfg.Variant))
	}
	m.SetHTM(h)
	return &System{M: m, HTM: h}
}

// retryLimit resolves the configured stall-retry backstop. Timestamp
// ordering makes waits-for cycles impossible (young always waits on old),
// so the limit is only a livelock backstop, not a deadlock breaker.
func retryLimit(cfg Config) int {
	if cfg.RetryLimit > 0 {
		return cfg.RetryLimit
	}
	return 64
}

// Spawn starts a simulated thread (pinned round-robin to cores).
func (s *System) Spawn(fn func(*Ctx)) { s.M.Spawn(fn) }

// Run simulates until all threads finish, returning the makespan in cycles.
func (s *System) Run() Cycle { return s.M.Run() }

// Load reads a word from the simulated memory image (for inspection after
// Run; simulated threads use Ctx/Tx accessors).
func (s *System) Load(a Addr) uint64 { return s.M.Store.Load(a) }

// StoreWord initializes a word in the simulated memory image before Run.
func (s *System) StoreWord(a Addr, v uint64) { s.M.Store.StoreWord(a, v) }

// TokenTM returns the TokenTM protocol engine when that variant is attached
// (for paging, bookkeeping checks and Table 6 counters), or nil.
func (s *System) TokenTM() *core.TokenTM {
	t, _ := s.HTM.(*core.TokenTM)
	return t
}
