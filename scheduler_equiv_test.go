package tokentm

// Scheduler equivalence: the event engine (internal/sim/events.go) must
// reproduce the legacy per-turn scheduler loop exactly — same commit
// journal, same abort stream, same cycle attribution, same per-core clocks —
// on every variant and every workload. The legacy loop stays behind
// Config.LegacyStepper for exactly one release; this test (and the flag, and
// the loop) are deleted together once the event engine has baked.

import (
	"reflect"
	"testing"

	"tokentm/internal/workload"
)

// equivScale keeps the doubled full-grid sweep quick while still exercising
// contention, aborts, stalls, evictions and deferred-work flushing.
const equivScale = 0.002

// runWithEngine is runWorkload with an explicit engine choice.
func runWithEngine(spec workload.Spec, v Variant, seed int64, legacy bool) (RunDetail, *System) {
	sys := New(Config{Variant: v, Cores: evalCores, Seed: seed, LegacyStepper: legacy})
	spec.Build(sys.M, evalCores, equivScale, seed)
	cycles := sys.Run()
	d := RunDetail{
		Workload:  spec.Name,
		Variant:   v,
		Cycles:    cycles,
		Commits:   sys.M.Commits,
		Metrics:   *sys.HTM.Stats(),
		Breakdown: sys.M.BreakdownTotal(),
		CoreTimes: sys.M.CoreTimes(),
		AbortRecs: sys.M.AbortRecs,
	}
	if tok := sys.TokenTM(); tok != nil {
		d.FastCommits = tok.FastCommits
		d.SlowCommits = tok.SlowCommits
	}
	return d, sys
}

func TestSchedulerEquivalence(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, spec := range workload.Specs() {
		for _, v := range Variants() {
			for _, seed := range seeds {
				spec, v, seed := spec, v, seed
				t.Run(spec.Name+"/"+string(v)+"/"+string('0'+rune(seed)), func(t *testing.T) {
					legacy, sysL := runWithEngine(spec, v, seed, true)
					event, sysE := runWithEngine(spec, v, seed, false)

					if legacy.Cycles != event.Cycles {
						t.Errorf("makespan: legacy %d, event %d", legacy.Cycles, event.Cycles)
					}
					if !reflect.DeepEqual(legacy.Metrics, event.Metrics) {
						t.Errorf("metrics diverge:\n legacy: %+v\n event:  %+v", legacy.Metrics, event.Metrics)
					}
					if !reflect.DeepEqual(legacy.Commits, event.Commits) {
						t.Errorf("commit journals diverge (%d vs %d records)", len(legacy.Commits), len(event.Commits))
					}
					if !reflect.DeepEqual(legacy.AbortRecs, event.AbortRecs) {
						t.Errorf("abort streams diverge (%d vs %d records)", len(legacy.AbortRecs), len(event.AbortRecs))
					}
					if !reflect.DeepEqual(legacy.Breakdown, event.Breakdown) {
						t.Errorf("cycle attribution diverges:\n legacy: %+v\n event:  %+v", legacy.Breakdown, event.Breakdown)
					}
					if !reflect.DeepEqual(legacy.CoreTimes, event.CoreTimes) {
						for c := range legacy.CoreTimes {
							if legacy.CoreTimes[c] != event.CoreTimes[c] {
								t.Errorf("core %d clock: legacy %d, event %d", c, legacy.CoreTimes[c], event.CoreTimes[c])
							}
						}
					}
					if legacy.FastCommits != event.FastCommits || legacy.SlowCommits != event.SlowCommits {
						t.Errorf("commit kinds: fast %d/%d slow %d/%d",
							legacy.FastCommits, event.FastCommits, legacy.SlowCommits, event.SlowCommits)
					}
					// Both engines must also uphold the conservation
					// invariant independently — equality alone could hide a
					// shared accounting hole.
					if err := sysL.M.CheckConservation(); err != nil {
						t.Errorf("legacy engine: %v", err)
					}
					if err := sysE.M.CheckConservation(); err != nil {
						t.Errorf("event engine: %v", err)
					}
				})
			}
		}
	}
}
