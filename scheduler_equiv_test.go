package tokentm

// Scheduler goldens: the event engine (internal/sim/events.go) is the only
// engine for the default min-time schedule since the legacy per-turn loop's
// Config.LegacyStepper flag was removed (it had been kept for exactly one
// release, PR 7). Equivalence is now pinned two ways:
//
//  1. Golden fingerprints: every workload × variant × seed run must hash to
//     the checked-in value in testdata/scheduler_golden.txt — the same
//     observables the old A/B test compared (makespan, commit journal,
//     abort stream, cycle attribution, per-core clocks), collapsed to one
//     FNV-1a line per run. Regenerate with TOKENTM_UPDATE_GOLDEN=1 after a
//     deliberate schedule change and review the diff.
//  2. A per-turn spot check: the surviving per-turn loop (still used by
//     preemptive machines, custom pickers and the schedule explorer) must
//     produce identical observables on a sampled grid, driven through a
//     wrapper picker that defeats the MinTimePicker fast-path dispatch.

import (
	"fmt"
	"hash/fnv"
	"os"
	"reflect"
	"strings"
	"testing"

	"tokentm/internal/sim"
	"tokentm/internal/workload"
)

// equivScale keeps the full-grid sweep quick while still exercising
// contention, aborts, stalls, evictions and deferred-work flushing.
const equivScale = 0.002

const goldenPath = "testdata/scheduler_golden.txt"

// fingerprintDetail collapses every schedule-sensitive observable to one
// hash. All fields are structs, arrays and slices (no maps), so the %+v
// rendering — and therefore the hash — is deterministic.
func fingerprintDetail(d RunDetail) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "cycles=%d fast=%d slow=%d\n", d.Cycles, d.FastCommits, d.SlowCommits)
	fmt.Fprintf(h, "metrics=%+v\n", d.Metrics)
	fmt.Fprintf(h, "breakdown=%+v\n", d.Breakdown)
	fmt.Fprintf(h, "cores=%v\n", d.CoreTimes)
	for _, r := range d.Commits {
		fmt.Fprintf(h, "commit=%+v\n", r)
	}
	for _, r := range d.AbortRecs {
		fmt.Fprintf(h, "abort=%+v\n", r)
	}
	return h.Sum64()
}

func goldenKey(spec workload.Spec, v Variant, seed int64) string {
	return fmt.Sprintf("%s/%s/%d", spec.Name, v, seed)
}

func readGolden(t *testing.T) map[string]uint64 {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (regenerate with TOKENTM_UPDATE_GOLDEN=1): %v", goldenPath, err)
	}
	want := make(map[string]uint64)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var key string
		var fp uint64
		if _, err := fmt.Sscanf(line, "%s %x", &key, &fp); err != nil {
			t.Fatalf("bad golden line %q: %v", line, err)
		}
		want[key] = fp
	}
	return want
}

func TestSchedulerGoldens(t *testing.T) {
	update := os.Getenv("TOKENTM_UPDATE_GOLDEN") != ""
	seeds := []int64{1, 2, 3}
	if testing.Short() && !update {
		seeds = seeds[:1]
	}

	var want map[string]uint64
	if !update {
		want = readGolden(t)
	}

	var lines []string
	for _, spec := range workload.Specs() {
		for _, v := range Variants() {
			for _, seed := range seeds {
				spec, v, seed := spec, v, seed
				t.Run(goldenKey(spec, v, seed), func(t *testing.T) {
					d, sys := runWorkload(spec, v, equivScale, seed)
					if err := sys.M.CheckConservation(); err != nil {
						t.Errorf("conservation: %v", err)
					}
					fp := fingerprintDetail(d)
					key := goldenKey(spec, v, seed)
					if update {
						lines = append(lines, fmt.Sprintf("%s %016x", key, fp))
						return
					}
					wantFP, ok := want[key]
					if !ok {
						t.Fatalf("no golden for %s; regenerate with TOKENTM_UPDATE_GOLDEN=1", key)
					}
					if fp != wantFP {
						t.Errorf("schedule fingerprint %016x, golden %016x; if the schedule change is deliberate, regenerate with TOKENTM_UPDATE_GOLDEN=1 and review the diff", fp, wantFP)
					}
				})
			}
		}
	}

	if update {
		out := "# workload/variant/seed fnv1a64(observables) — regenerate with TOKENTM_UPDATE_GOLDEN=1 go test -run TestSchedulerGoldens\n" +
			strings.Join(lines, "\n") + "\n"
		if err := os.WriteFile(goldenPath, []byte(out), 0o644); err != nil {
			t.Fatalf("writing %s: %v", goldenPath, err)
		}
		t.Logf("wrote %d goldens to %s", len(lines), goldenPath)
	}
}

// perTurnMinTime wraps MinTimePicker in a distinct type so Run's
// MinTimePicker type assertion fails and the machine takes the per-turn
// loop with the same min-(ready,id) policy.
type perTurnMinTime struct{ sim.MinTimePicker }

// runPerTurn is runWorkload forced onto the per-turn scheduler loop.
func runPerTurn(spec workload.Spec, v Variant, seed int64) (RunDetail, *System) {
	sys := New(Config{Variant: v, Cores: evalCores, Seed: seed})
	spec.Build(sys.M, evalCores, equivScale, seed)
	sys.M.SetPicker(perTurnMinTime{})
	cycles := sys.Run()
	d := RunDetail{
		Workload:  spec.Name,
		Variant:   v,
		Cycles:    cycles,
		Commits:   sys.M.Commits,
		Metrics:   *sys.HTM.Stats(),
		Breakdown: sys.M.BreakdownTotal(),
		CoreTimes: sys.M.CoreTimes(),
		AbortRecs: sys.M.AbortRecs,
	}
	if tok := sys.TokenTM(); tok != nil {
		d.FastCommits = tok.FastCommits
		d.SlowCommits = tok.SlowCommits
	}
	return d, sys
}

// TestPerTurnLoopMatchesEventEngine keeps the surviving per-turn loop
// honest against the event engine on a sampled grid: identical observables,
// record for record. This is the direct descendant of the deleted
// LegacyStepper A/B test, driven through the picker instead of a flag.
func TestPerTurnLoopMatchesEventEngine(t *testing.T) {
	specs := workload.Specs()
	if len(specs) > 2 && !testing.Short() {
		specs = specs[:3]
	} else {
		specs = specs[:1]
	}
	for _, spec := range specs {
		for _, v := range Variants() {
			spec, v := spec, v
			t.Run(spec.Name+"/"+string(v), func(t *testing.T) {
				event, sysE := runWorkload(spec, v, equivScale, 1)
				turn, sysT := runPerTurn(spec, v, 1)
				if !reflect.DeepEqual(event, turn) {
					t.Errorf("per-turn loop diverges from event engine:\n event:    fingerprint %016x\n per-turn: fingerprint %016x",
						fingerprintDetail(event), fingerprintDetail(turn))
				}
				if err := sysE.M.CheckConservation(); err != nil {
					t.Errorf("event engine: %v", err)
				}
				if err := sysT.M.CheckConservation(); err != nil {
					t.Errorf("per-turn loop: %v", err)
				}
			})
		}
	}
}
