package tokentm

// The benchmark harness regenerates every table and figure in the paper's
// evaluation section as testing.B benchmarks (use -bench with -benchtime=1x
// for one full regeneration pass, or cmd/experiments for the formatted
// tables). Reported custom metrics carry the experiment's headline numbers
// into the benchmark output.
//
// The figure benchmarks run on internal/harness (Figure1/Figure5 sweep
// their grids through the parallel job system); BenchmarkHarnessSweep
// measures the job system itself at serial vs full parallelism.

import (
	"fmt"
	"runtime"
	"testing"

	"tokentm/internal/harness"
	"tokentm/internal/stats"
	"tokentm/internal/workload"
)

// benchScale keeps the in-benchmark experiment runs quick; cmd/experiments
// regenerates publication-scale numbers.
const benchScale = 0.01

// BenchmarkTable1 regenerates the long-running-critical-section analysis of
// the four lock-based server workloads.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table1(int64(i + 1))
		if len(rows) != 4 {
			b.Fatal("table 1 rows")
		}
		if i == 0 {
			b.ReportMetric(rows[1].AvgMs, "Apache-avg-ms")
			b.ReportMetric(rows[3].PctTime, "BIND-pct")
		}
	}
}

// BenchmarkFigure1 regenerates the false-positive study: STAMP workloads on
// the LogTM-SE signature variants.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Figure1(benchScale, []int64{int64(i + 1)})
		for _, r := range rows {
			if r.Workload == "Delaunay" && i == 0 {
				b.ReportMetric(r.Speedup[VariantLogTMSE2xH3], "Delaunay-2xH3-speedup")
				b.ReportMetric(r.Speedup[VariantLogTMSE4xH3], "Delaunay-4xH3-speedup")
			}
		}
	}
}

// BenchmarkFigure5 regenerates the headline comparison: all eight workloads
// on all five HTM variants.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Figure5(benchScale, []int64{int64(i + 1)})
		if len(rows) != 8 {
			b.Fatal("figure 5 rows")
		}
		if i == 0 {
			for _, r := range rows {
				if r.Workload == "Delaunay" {
					b.ReportMetric(r.Speedup[VariantTokenTM], "Delaunay-TokenTM-speedup")
				}
			}
		}
	}
}

// BenchmarkTable5 regenerates the measured workload parameters.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table5(benchScale, int64(i+1))
		if len(rows) != 8 {
			b.Fatal("table 5 rows")
		}
	}
}

// BenchmarkTable6 regenerates TokenTM's overhead breakdown.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table6(benchScale, int64(i+1))
		if i == 0 {
			for _, r := range rows {
				if r.Benchmark == "Genome" {
					b.ReportMetric(r.FastPct, "Genome-fast-pct")
				}
			}
		}
	}
}

// BenchmarkHarnessSweep measures the experiment-grid job system end to end:
// the full 8 workloads × 5 variants grid swept through internal/harness at
// serial and full parallelism. The parallel/serial wall-clock ratio is the
// sweep speedup the harness buys on this host; per-job wall medians and
// p95s come from the stats order statistics.
func BenchmarkHarnessSweep(b *testing.B) {
	jobs := harness.Grid(workload.Names(), variantNames(), benchScale, []int64{1})
	for _, par := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := NewRunner(SweepOptions{Parallel: par})
				results := r.Sweep(jobs)
				if i != 0 {
					continue
				}
				wall := &stats.Sample{}
				for _, res := range results {
					if !res.OK() {
						b.Fatalf("job %s failed: %s", res.Job, res.Err)
					}
					wall.Add(float64(res.WallNS) / 1e6)
				}
				b.ReportMetric(float64(len(results)), "jobs/op")
				b.ReportMetric(wall.Median(), "job-wall-median-ms")
				b.ReportMetric(wall.Percentile(95), "job-wall-p95-ms")
			}
		})
	}
}

// variantNames is the variant axis of the benchmark grid.
func variantNames() []string {
	var names []string
	for _, v := range Variants() {
		names = append(names, string(v))
	}
	return names
}

// BenchmarkWorkloadVariant measures simulator throughput per workload and
// variant (simulated transactions per wall-clock second appear as the
// xacts/op metric; one op = one scaled run).
func BenchmarkWorkloadVariant(b *testing.B) {
	for _, wl := range []string{"Cholesky", "Delaunay"} {
		spec, _ := workload.ByName(wl)
		for _, v := range []Variant{VariantTokenTM, VariantLogTMSE4xH3} {
			b.Run(fmt.Sprintf("%s/%s", wl, v), func(b *testing.B) {
				var xacts int
				for i := 0; i < b.N; i++ {
					d := RunWorkload(spec, v, benchScale, int64(i+1))
					xacts = len(d.Commits)
				}
				b.ReportMetric(float64(xacts), "xacts/op")
			})
		}
	}
}

// --- Ablation benchmarks: the design choices DESIGN.md calls out. ---

// BenchmarkAblationFastRelease isolates §4.4's mechanism by running the
// same workload with and without fast token release.
func BenchmarkAblationFastRelease(b *testing.B) {
	spec, _ := workload.ByName("Raytrace")
	for _, v := range []Variant{VariantTokenTM, VariantTokenTMNoFast} {
		b.Run(string(v), func(b *testing.B) {
			var cycles Cycle
			for i := 0; i < b.N; i++ {
				d := RunWorkload(spec, v, benchScale, int64(i+1))
				cycles = d.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationRetryLimit sweeps the contention manager's livelock
// backstop on a contended workload.
func BenchmarkAblationRetryLimit(b *testing.B) {
	spec, _ := workload.ByName("Vacation-High")
	for _, limit := range []int{4, 16, 64, 256} {
		b.Run(fmt.Sprintf("limit=%d", limit), func(b *testing.B) {
			var cycles Cycle
			var aborts uint64
			for i := 0; i < b.N; i++ {
				sys := New(Config{Variant: VariantTokenTM, Cores: 32, Seed: int64(i + 1), RetryLimit: limit})
				spec.Build(sys.M, 32, benchScale, int64(i+1))
				cycles = sys.Run()
				aborts = sys.HTM.Stats().Aborts
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
			b.ReportMetric(float64(aborts), "aborts")
		})
	}
}

// BenchmarkAblationSignatureKind sweeps signature precision on the workload
// most sensitive to it.
func BenchmarkAblationSignatureKind(b *testing.B) {
	spec, _ := workload.ByName("Delaunay")
	for _, v := range []Variant{VariantLogTMSEPerf, VariantLogTMSE4xH3, VariantLogTMSE2xH3} {
		b.Run(string(v), func(b *testing.B) {
			var cycles Cycle
			var falseConf uint64
			for i := 0; i < b.N; i++ {
				d := RunWorkload(spec, v, benchScale, int64(i+1))
				cycles = d.Cycles
				falseConf = d.Metrics.FalseConflicts
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
			b.ReportMetric(float64(falseConf), "false-conflicts")
		})
	}
}

// BenchmarkSmallSweep runs a small experiment grid (2 workloads × 2
// variants) end to end through the harness, serially. It is the macro
// companion to internal/core's protocol-path microbenchmarks: total
// allocations and wall time per sweep bound how far publication-scale
// sweeps can push before the allocator throttles them.
func BenchmarkSmallSweep(b *testing.B) {
	jobs := harness.Grid(
		[]string{"Cholesky", "Vacation-High"},
		[]string{string(VariantTokenTM), string(VariantLogTMSE4xH3)},
		0.005, []int64{1})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewRunner(SweepOptions{Parallel: 1})
		for _, res := range r.Sweep(jobs) {
			if !res.OK() {
				b.Fatalf("job %s failed: %s", res.Job, res.Err)
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: wall-clock
// time per simulated run of 16k transactional accesses on one core.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const accessesPerRun = 16384
	for i := 0; i < b.N; i++ {
		sys := New(Config{Variant: VariantTokenTM, Cores: 1})
		sys.Spawn(func(tc *Ctx) {
			done := 0
			for done < accessesPerRun {
				tc.Atomic(func(tx *Tx) {
					for j := 0; j < 16; j++ {
						a := Addr(0x100000 + (done%4096)*BlockBytes)
						tx.Store(a, tx.Load(a)+1)
						done++
					}
				})
			}
		})
		sys.Run()
	}
	b.ReportMetric(accessesPerRun, "accesses/op")
}
